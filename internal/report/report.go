// Package report formats experiment results as aligned text tables, CSV
// files, and quick ASCII plots, so the harness binaries can print the same
// rows/series the paper's figures show.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i := 0; i < len(widths); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, width := range widths {
		total += width + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// WriteCSV writes the table (header + rows, no title) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := row
		if len(row) < len(t.Columns) {
			padded = append(append([]string(nil), row...), make([]string, len(t.Columns)-len(row))...)
		}
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named column of y-values for a figure.
type Series struct {
	Name   string
	Values []float64
}

// SeriesTable builds a table from an x column plus named y series, the
// shape of every figure in the paper.
func SeriesTable(title, xName string, xs []float64, series ...Series) *Table {
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, xName)
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := NewTable(title, cols...)
	for i, x := range xs {
		row := make([]string, 0, len(cols))
		row = append(row, Float(x, 0))
		for _, s := range series {
			if i < len(s.Values) {
				row = append(row, Float(s.Values[i], 3))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Float formats v with the given number of decimals, trimming trailing
// zeros beyond the first decimal for readability.
func Float(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if decimals <= 0 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	s := strconv.FormatFloat(v, 'f', decimals, 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	return s
}

// CellEvent is one experiment-grid progress event in renderer form: the
// scheduler's per-cell notifications, decoupled from the core package so
// any driver can log them.
type CellEvent struct {
	// Scenario and N name the grid cell.
	Scenario string
	N        int
	// Seed is the cell's effective topology seed.
	Seed uint64
	// State is "start", "done", "cached", "failed", "resumed", "retried",
	// "quarantined" or "cancelled".
	State string
	// Attempt is the computation attempt count, when the scheduler reports
	// one (the failed attempt for "retried", the exhausted budget for
	// "quarantined").
	Attempt int
	// Elapsed is the cell's computation (or cache-wait) time.
	Elapsed time.Duration
	// Err is set for failed, retried, quarantined and cancelled cells.
	Err error
}

// FormatCellEvent renders one progress line for a grid cell event.
func FormatCellEvent(e CellEvent) string {
	cell := fmt.Sprintf("%s n=%d", e.Scenario, e.N)
	switch e.State {
	case "start":
		return fmt.Sprintf("  run    %s", cell)
	case "done":
		return fmt.Sprintf("  done   %s  (%v)", cell, e.Elapsed.Round(time.Millisecond))
	case "cached":
		return fmt.Sprintf("  cached %s", cell)
	case "failed":
		return fmt.Sprintf("  FAIL   %s: %v", cell, e.Err)
	case "resumed":
		return fmt.Sprintf("  resume %s  (from journal)", cell)
	case "retried":
		return fmt.Sprintf("  retry  %s  (attempt %d failed: %v)", cell, e.Attempt, e.Err)
	case "quarantined":
		return fmt.Sprintf("  QUAR   %s: %v", cell, e.Err)
	case "cancelled":
		return fmt.Sprintf("  cancel %s", cell)
	}
	return fmt.Sprintf("  %-6s %s", e.State, cell)
}

// CellLogger returns a callback that writes one FormatCellEvent line per
// event to w, for wiring a scheduler's OnCell to a terminal. It is
// NewCellLogger's text format, kept as the zero-configuration entry point.
func CellLogger(w io.Writer) func(CellEvent) {
	logCell, _ := NewCellLogger(w, "text")
	return logCell
}

// plotMaxWidth caps the chart width; longer series are resampled.
const plotMaxWidth = 100

// AsciiPlot renders series as a crude terminal chart (one character column
// per x point, rows from max to min), good enough to eyeball trends in the
// harness output. Series longer than the chart width are downsampled.
func AsciiPlot(w io.Writer, height int, xs []float64, series ...Series) error {
	if height < 2 {
		height = 8
	}
	if len(xs) > plotMaxWidth {
		step := float64(len(xs)) / plotMaxWidth
		pick := func(vals []float64) []float64 {
			if len(vals) == 0 {
				return vals
			}
			out := make([]float64, 0, plotMaxWidth)
			for i := 0; i < plotMaxWidth; i++ {
				idx := int(float64(i) * step)
				if idx >= len(vals) {
					idx = len(vals) - 1
				}
				out = append(out, vals[idx])
			}
			return out
		}
		xs = pick(xs)
		resampled := make([]Series, len(series))
		for i, s := range series {
			resampled[i] = Series{Name: s.Name, Values: pick(s.Values)}
		}
		series = resampled
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: nothing to plot")
	}
	if hi == lo {
		hi = lo + 1
	}
	markers := "*+ox#@%&"
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xs)))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			if i >= len(xs) {
				break
			}
			r := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			grid[r][i] = m
		}
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = Float(hi, 2)
		case height - 1:
			label = Float(lo, 2)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%10s  x: %s..%s  %s\n", "", Float(xs[0], 0), Float(xs[len(xs)-1], 0), strings.Join(legend, " "))
	return err
}
