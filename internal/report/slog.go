package report

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
)

// Cell logging runs on log/slog: every progress event is one structured
// record with scenario, n, seed, state, elapsed and err attributes, and
// the output format is a handler choice. The "text" handler reproduces the
// legacy FormatCellEvent lines byte-for-byte, so terminal output (and the
// golden tests over it) is unchanged; "json" swaps in slog's standard JSON
// handler for machine consumption (one object per line).

// Structured attribute keys for cell events.
const (
	cellKeyScenario = "scenario"
	cellKeyN        = "n"
	cellKeySeed     = "seed"
	cellKeyState    = "state"
	cellKeyAttempt  = "attempt"
	cellKeyElapsed  = "elapsed"
	cellKeyErr      = "err"
)

// NewCellLogger returns a callback that logs one record per cell event to
// w in the given format: "text" (or "") for the legacy aligned lines,
// "json" for slog JSON. Failed cells log at LevelError, everything else at
// LevelInfo. The callback is safe for concurrent use, though schedulers
// already serialize OnCell.
func NewCellLogger(w io.Writer, format string) (func(CellEvent), error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = &cellTextHandler{w: w}
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("report: unknown log format %q (want text or json)", format)
	}
	logger := slog.New(h)
	return func(e CellEvent) {
		level := slog.LevelInfo
		switch e.State {
		case "failed", "quarantined":
			level = slog.LevelError
		case "retried":
			level = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String(cellKeyScenario, e.Scenario),
			slog.Int(cellKeyN, e.N),
			slog.Uint64(cellKeySeed, e.Seed),
			slog.String(cellKeyState, e.State),
			slog.Duration(cellKeyElapsed, e.Elapsed),
		}
		if e.Attempt > 0 {
			attrs = append(attrs, slog.Int(cellKeyAttempt, e.Attempt))
		}
		if e.Err != nil {
			attrs = append(attrs, slog.String(cellKeyErr, e.Err.Error()))
		}
		logger.LogAttrs(context.Background(), level, "cell", attrs...)
	}, nil
}

// cellTextHandler renders cell records as the legacy progress lines. It is
// not a general slog handler — it knows the cell attribute schema and
// ignores groups — which is exactly enough for the experiment binaries.
type cellTextHandler struct {
	mu sync.Mutex
	w  io.Writer
}

func (h *cellTextHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *cellTextHandler) Handle(_ context.Context, r slog.Record) error {
	var e CellEvent
	var errMsg string
	r.Attrs(func(a slog.Attr) bool {
		switch a.Key {
		case cellKeyScenario:
			e.Scenario = a.Value.String()
		case cellKeyN:
			e.N = int(a.Value.Int64())
		case cellKeySeed:
			e.Seed = a.Value.Uint64()
		case cellKeyState:
			e.State = a.Value.String()
		case cellKeyAttempt:
			e.Attempt = int(a.Value.Int64())
		case cellKeyElapsed:
			e.Elapsed = a.Value.Duration()
		case cellKeyErr:
			errMsg = a.Value.String()
		}
		return true
	})
	if errMsg != "" {
		e.Err = fmt.Errorf("%s", errMsg)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := fmt.Fprintln(h.w, FormatCellEvent(e))
	return err
}

func (h *cellTextHandler) WithAttrs([]slog.Attr) slog.Handler { return h }

func (h *cellTextHandler) WithGroup(string) slog.Handler { return h }

var _ slog.Handler = (*cellTextHandler)(nil)
