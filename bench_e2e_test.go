package bgpchurn

// End-to-end benchmark of the C-event hot path: one full RunCEvents call at
// n=1000 (paper-scale topology, reduced origin count) per iteration. This is
// the number `make bench-e2e` tracks in BENCH_e2e.json: the cold variant
// pays the full DES initial-propagation flood per origin, the warm variant
// installs the converged RIB directly (core.Config.WarmStart).

import (
	"path/filepath"
	"testing"

	"bgpchurn/internal/core"
)

// benchE2ETopology builds the fixed n=1000 Baseline instance the e2e bench
// measures on (seed matches the experiment seed for provenance).
func benchE2ETopology(b *testing.B) *Topology {
	b.Helper()
	topo, err := Baseline.Generate(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// benchmarkRunCEvents runs the C-event experiment with the given
// configuration once per iteration and reports the churn metric so a perf
// regression that changes results is visible in the same record.
func benchmarkRunCEvents(b *testing.B, cfg Experiment) {
	b.ReportAllocs()
	topo := benchE2ETopology(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunCEvents(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalUpdates
	}
	b.ReportMetric(total, "total-updates")
}

// BenchmarkRunCEvents measures RunCEvents wall-clock at n=1000 with 20
// origins, cold (full DES convergence flood per origin) vs warm (direct
// converged-RIB installation).
func BenchmarkRunCEvents(b *testing.B) {
	cfg := DefaultExperiment(1)
	cfg.Origins = 20
	cfg.Parallelism = 1 // single worker: measure the kernel, not the pool
	b.Run("cold", func(b *testing.B) {
		benchmarkRunCEvents(b, cfg)
	})
	b.Run("warm", func(b *testing.B) {
		warm := cfg
		warm.WarmStart = true
		benchmarkRunCEvents(b, warm)
	})
	// obs: warm run with a full metrics hub attached. The CI obs-guard job
	// compares its allocs/op against the warm baseline — enabled probes must
	// not allocate on the steady-state path.
	b.Run("obs", func(b *testing.B) {
		instrumented := cfg
		instrumented.WarmStart = true
		instrumented.Obs = NewObsMetrics()
		benchmarkRunCEvents(b, instrumented)
	})
	// spans: warm run with causal tracing on — the engine threads cause IDs
	// and tallies attribution, and each origin closes three spans. The CI
	// obs-guard job budgets its allocs/op against the warm baseline: the
	// per-origin span cost is fixed (~a few records and one Stats map), so a
	// per-update allocation sneaking into the traced hot path blows the
	// budget immediately.
	b.Run("spans", func(b *testing.B) {
		traced := cfg
		traced.WarmStart = true
		traced.Spans = NewSpanRecorder()
		benchmarkRunCEvents(b, traced)
	})
	// journal: warm run followed by the crash-safe checkpoint the scheduler
	// appends after every cell. The resume-guard comparison against the warm
	// baseline enforces that checkpointing stays a fixed per-cell cost (JSON
	// encode + hash + one write) and adds nothing that scales with the event
	// count — the kernel loop itself never touches the journal.
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		warm := cfg
		warm.WarmStart = true
		topo := benchE2ETopology(b)
		j, err := OpenJournal(filepath.Join(b.TempDir(), "cells.journal"))
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		key := core.CellKey{Scenario: "BASELINE", N: 1000, TopologySeed: 1, Origins: warm.Origins, WarmStart: true}
		var total float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.RunCEvents(topo, warm)
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Append(key, res); err != nil {
				b.Fatal(err)
			}
			total = res.TotalUpdates
		}
		b.ReportMetric(total, "total-updates")
	})
}
