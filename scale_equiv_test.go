package bgpchurn

// Differential tier for the compact-RIB engine: enabling CompactRIB swaps
// the RIB representation (interned 32-bit path IDs over CSR slot arrays in
// place of per-node slice maps) but must not change a single observable
// bit. These tests run every growth scenario at paper scales with both
// engines and compare the complete rendered results and the U(X) CSV
// artifacts byte for byte.

import (
	"bytes"
	"fmt"
	"testing"

	"bgpchurn/internal/report"
)

// compactVariant returns cfg with the interned-path engine selected.
func compactVariant(cfg Experiment) Experiment {
	c := cfg
	c.BGP.CompactRIB = true
	return c
}

// uCSV renders the Fig-4 U(X) table of a sweep as CSV bytes, the artifact
// cmd/experiments emits.
func uCSV(sw *SweepResult) []byte {
	table := report.SeriesTable("U(X) by node type", "n", sw.Sizes(),
		report.Series{Name: "U(T)", Values: sw.SeriesU(T)},
		report.Series{Name: "U(M)", Values: sw.SeriesU(M)},
		report.Series{Name: "U(CP)", Values: sw.SeriesU(CP)},
		report.Series{Name: "U(C)", Values: sw.SeriesU(C)},
	)
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestCompactEngineEquivalentAcrossScenarios sweeps every growth model at
// n ∈ {1000, 3000} under two independent seeds and demands the compact
// engine reproduce the classic engine's results and U(X) CSVs exactly.
func TestCompactEngineEquivalentAcrossScenarios(t *testing.T) {
	sizes := []int{1000, 3000}
	for _, sc := range Scenarios() {
		sc := sc
		for _, seed := range []uint64{3, 17} {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", sc.Name, seed), func(t *testing.T) {
				t.Parallel()
				ev := DefaultExperiment(seed)
				ev.Origins = 4
				classic, err := Sweep(sc, SweepConfig{Sizes: sizes, TopologySeed: seed, Event: ev})
				if err != nil {
					t.Fatal(err)
				}
				compact, err := Sweep(sc, SweepConfig{Sizes: sizes, TopologySeed: seed, Event: compactVariant(ev)})
				if err != nil {
					t.Fatal(err)
				}
				if a, b := fingerprintSweep(classic), fingerprintSweep(compact); a != b {
					t.Fatalf("compact engine diverges:\nclassic %s\ncompact %s", a, b)
				}
				if a, b := uCSV(classic), uCSV(compact); !bytes.Equal(a, b) {
					t.Fatalf("U(X) CSV differs between engines:\nclassic:\n%s\ncompact:\n%s", a, b)
				}
			})
		}
	}
}

// TestShardedSweepEquivalentAcrossScenarios sweeps every growth model at
// n ∈ {1000, 3000} on the windowed executor and demands byte-identical
// results and U(X) CSV artifacts for shards ∈ {1, 2, 4, 8}, under both the
// classic and the compact RIB engine. The shards=1 classic sweep is the
// reference; every other (engine, shards) combination must reproduce it —
// so the test also proves the two engines agree on the windowed schedule.
func TestShardedSweepEquivalentAcrossScenarios(t *testing.T) {
	sizes := []int{1000, 3000}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			ev := DefaultExperiment(7)
			ev.Origins = 4
			var wantFP string
			var wantCSV []byte
			for _, engine := range []string{"classic", "compact"} {
				base := shardedVariant(ev, 0)
				if engine == "compact" {
					base = compactVariant(base)
				}
				for _, shards := range shardCounts {
					cfg := base
					cfg.BGP.Shards = shards
					sw, err := Sweep(sc, SweepConfig{Sizes: sizes, TopologySeed: 7, Event: cfg})
					if err != nil {
						t.Fatal(err)
					}
					fp, csv := fingerprintSweep(sw), uCSV(sw)
					if wantFP == "" {
						wantFP, wantCSV = fp, csv
						continue
					}
					if fp != wantFP {
						t.Fatalf("%s/shards=%d diverges:\nwant %s\ngot  %s", engine, shards, wantFP, fp)
					}
					if !bytes.Equal(csv, wantCSV) {
						t.Fatalf("%s/shards=%d U(X) CSV differs:\nwant:\n%s\ngot:\n%s", engine, shards, wantCSV, csv)
					}
				}
			}
		})
	}
}

// TestCompactEngineEquivalentProtocolVariants covers the protocol paths the
// scenario sweep leaves at defaults: WRATE withdrawal rate-limiting,
// per-prefix MRAI scope, MRAI disabled, and RFC 2439 dampening. Each runs
// both engines on one Baseline topology at n=1000.
func TestCompactEngineEquivalentProtocolVariants(t *testing.T) {
	topo, err := Baseline.Generate(1000, 41)
	if err != nil {
		t.Fatal(err)
	}
	variants := protocolVariants(41, 4)
	perPrefix := DefaultExperiment(41)
	perPrefix.Origins = 4
	perPrefix.BGP.Scope = PerPrefix
	variants["PER-PREFIX"] = perPrefix
	noMRAI := DefaultExperiment(41)
	noMRAI.Origins = 4
	noMRAI.BGP.MRAI = 0
	variants["NO-MRAI"] = noMRAI
	damp := DefaultExperiment(41)
	damp.Origins = 4
	damp.BGP.Dampening = DefaultDampening()
	variants["DAMPENING"] = damp

	for name, cfg := range variants {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			classic, err := RunCEvents(topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			compact, err := RunCEvents(topo, compactVariant(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if a, b := fingerprint(classic), fingerprint(compact); a != b {
				t.Fatalf("%s: compact engine diverges:\nclassic %s\ncompact %s", name, a, b)
			}
		})
	}
}

// TestCompactEngineEquivalentWithChecker reruns the Baseline cell with the
// RIB invariant checker active inside the compact engine, proving the
// equivalence is not an artifact of unverified internal state. Kept to one
// small cell — the checker re-decides every touched RIB entry per event.
func TestCompactEngineEquivalentWithChecker(t *testing.T) {
	topo, err := Baseline.Generate(1000, 53)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperiment(53)
	cfg.Origins = 2
	classic, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := compactVariant(cfg)
	checked.BGP.Check = true
	compact, err := RunCEvents(topo, checked)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fingerprint(classic), fingerprint(compact); a != b {
		t.Fatalf("checked compact engine diverges:\nclassic %s\ncompact %s", a, b)
	}
}
