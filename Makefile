# bgpchurn — stdlib-only Go; these targets mirror CI.

GO ?= go

# Label under which `make bench-kernel` records its run in BENCH_kernel.json.
BENCH_LABEL ?= current

.PHONY: test race bench bench-kernel bench-e2e obs-guard resume-smoke resume-guard build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-kernel runs the kernel micro-benchmarks and the root figure suite
# with allocation reporting and records the numbers as a labeled entry in
# BENCH_kernel.json (replacing an existing entry with the same label), so
# the perf trajectory is tracked PR over PR.
bench-kernel:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./internal/bgp . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_kernel.json

# bench-e2e runs the end-to-end RunCEvents benchmark (n=1000, cold vs warm
# start) and records it in BENCH_e2e.json under the same labeling scheme.
bench-e2e:
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents' -benchmem -benchtime 5x . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_e2e.json

# obs-guard mirrors the CI job of the same name: instrumentation must not
# allocate beyond the warm baseline plus a fixed per-run setup budget.
obs-guard:
	$(GO) vet ./internal/obs/ ./cmd/benchguard/
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents/(warm|obs)' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/obs

# resume-smoke exercises crash recovery across real processes: run the -fast
# grid, SIGINT it partway, rerun with -resume, and require that only the
# missing cells are recomputed and every CSV is byte-identical to an
# uninterrupted reference. Mirrors the CI resume-guard job.
resume-smoke:
	./scripts/resume_smoke.sh

# resume-guard enforces the checkpointing cost contract: appending a cell to
# the journal is a fixed per-cell budget (JSON encode + hash + one write,
# ~30 allocs — hence the raised slack), never a per-event cost. Anything
# that made journaling scale with the event count would blow past the slack
# by orders of magnitude.
resume-guard:
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents/(warm|journal)' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/journal -slack 48
