# bgpchurn — stdlib-only Go; these targets mirror CI.

GO ?= go

.PHONY: test race bench build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .
