# bgpchurn — stdlib-only Go; these targets mirror CI.

GO ?= go

# Label under which `make bench-kernel` records its run in BENCH_kernel.json.
BENCH_LABEL ?= current

.PHONY: test race bench bench-kernel bench-e2e bench-scale scale-smoke bench-gen gen-smoke bench-shard shard-smoke fuzz-smoke obs-guard bench-obs sse-smoke resume-smoke resume-guard churnd-smoke build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race runs the full suite under the race detector, then reruns the
# checker-enabled tiers with -count=1: the RIB invariant checker
# (bgp.Config.Check) re-verifies decision fixpoints, PathID validity and
# export closure after every reconcile, and the compact-vs-classic
# differential tests exercise it inside parallel origin workers at small n.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run 'Consistency|Checker|CompactEngine|GrowThenReset|Sharded' ./internal/bgp/ .

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-kernel runs the kernel micro-benchmarks and the root figure suite
# with allocation reporting and records the numbers as a labeled entry in
# BENCH_kernel.json (replacing an existing entry with the same label), so
# the perf trajectory is tracked PR over PR.
bench-kernel:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./internal/bgp . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_kernel.json

# bench-e2e runs the end-to-end RunCEvents benchmark (n=1000, cold vs warm
# start) and records it in BENCH_e2e.json under the same labeling scheme.
bench-e2e:
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents' -benchmem -benchtime 5x . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_e2e.json

# bench-scale runs the internet-scale trajectory: one warm-start compact-RIB
# churn cell at n ∈ {10k, 50k, 100k} on a growth-chained Baseline topology,
# recording ns/op plus peak RSS (VmHWM) per size in BENCH_scale.json. The
# growth chain runs on the Fenwick-indexed generator (see bench-gen), so
# setup is seconds per size; the cells themselves are sub-minute.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleCell' -benchtime 1x -timeout 120m . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_scale.json

# scale-smoke mirrors the CI job of the same name: the n=10k warm cell must
# finish and stay under an absolute peak-RSS budget (cmd/benchguard -budget).
# The budget is ~2.5x today's footprint (~50 MB): a representation change
# that reintroduced per-neighbor maps or full-path storage would multiply
# RSS with n and blow past it.
scale-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleCell/n=10000$$' -benchtime 1x -timeout 20m . \
		| $(GO) run ./cmd/benchguard -guard BenchmarkScaleCell/n=10000 -metric peakRSS-MB -budget 128

# bench-gen runs the topology-generation trajectory: the accelerated
# generator (Fenwick-indexed preferential attachment, shared cones) at
# n ∈ {10k, 50k, 100k}, one process per size so peakRSS-MB is that run's
# own high-water mark, recorded in BENCH_gen.json. The retained linear-scan
# oracle provides the "before" record: set GEN_BENCH_LINEAR=all and
# BENCH_LABEL=linear-scan to re-measure it (the 100k point alone takes
# ~30 minutes; by default the Linear benchmark only runs its 10k point).
bench-gen:
	rm -f /tmp/bench-gen.txt
	for n in 10000 50000 100000; do \
		$(GO) test -run '^$$' -bench "BenchmarkTopologyGenerate\$$/n=$$n\$$" -benchtime 1x -timeout 60m . \
			| tee -a /tmp/bench-gen.txt || exit 1; \
	done
	$(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_gen.json < /tmp/bench-gen.txt

# gen-smoke mirrors the CI job of the same name: the n=50k Baseline topology
# must generate within absolute wall-clock and peak-RSS budgets. The budgets
# are roughly 8x today's numbers (~1.3 s, ~60 MB) to absorb slow runners: a
# regression that reintroduced a linear scan per draw or dense per-node cone
# bitsets would still blow past them by an order of magnitude (the linear
# oracle takes ~108 s at this size).
gen-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTopologyGenerate$$/n=50000$$' -benchtime 1x -timeout 20m . \
		| tee /tmp/gen-smoke.txt \
		| $(GO) run ./cmd/benchguard -guard BenchmarkTopologyGenerate/n=50000 -metric ns/op -budget 10e9
	$(GO) run ./cmd/benchguard -guard BenchmarkTopologyGenerate/n=50000 -metric peakRSS-MB -budget 256 < /tmp/gen-smoke.txt

# bench-shard runs the sharded-executor trajectory: one warm-start windowed
# churn cell at n ∈ {10k, 50k} × shards ∈ {1, 2, 4, 8}, recording ns/op,
# total updates and peak RSS per point in BENCH_shard.json. Every point
# simulates the same model (fixed 50 ms link delay), so the shard axis
# isolates executor scaling; the speedup requires that many idle cores — a
# single-CPU host runs the shards sequentially (see bgp.fanoutOK) and
# measures ~1x everywhere.
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedCell' -benchtime 1x -timeout 60m . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_shard.json

# shard-smoke mirrors the CI job of the same name: the n=10k shards=4
# windowed cell must stay under the scale tier's peak-RSS budget, and must
# not run slower than the same cell on one shard beyond a noise tolerance
# (single-core runners measure ~1x, multi-core runners a speedup — a real
# serialization bug in the sharded path shows up as a large ratio on both).
shard-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedCell/n=10000/shards=4$$' -benchtime 1x -timeout 20m . \
		| $(GO) run ./cmd/benchguard -guard BenchmarkShardedCell/n=10000/shards=4 -metric peakRSS-MB -budget 128
	$(GO) test -run '^$$' -bench 'BenchmarkShardedCell/n=10000/shards=(1|4)$$' -benchtime 3x -timeout 20m . \
		| $(GO) run ./cmd/benchguard -base BenchmarkShardedCell/n=10000/shards=1 -guard BenchmarkShardedCell/n=10000/shards=4 -metric ns/op -tolerance 0.25

# fuzz-smoke gives each fuzz harness a short adversarial run on top of the
# checked-in corpora (which `make test` already replays as regular cases).
# The journal harness is fsync-bound, so it gets an input-count budget
# rather than a time budget.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzInternTable -fuzztime 15s ./internal/bgp/
	$(GO) test -run '^$$' -fuzz FuzzOpenJournal -fuzztime 20x ./internal/core/

# obs-guard mirrors the CI job of the same name: instrumentation must not
# allocate beyond the warm baseline plus a fixed per-run setup budget. Two
# guards share one bench run: metrics probes get the default (near-zero)
# slack, and causal tracing gets a per-origin budget — ~140 allocs per
# origin close three spans and their Stats maps (~2.8k at 20 origins), so
# the 4096 slack absorbs exactly that fixed cost while a per-update
# allocation on the traced hot path (~50k updates/run) still blows it.
obs-guard:
	$(GO) vet ./internal/obs/ ./cmd/benchguard/
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents/(warm|obs|spans)' -benchmem -benchtime 3x . \
		| tee /tmp/obs-guard.txt \
		| $(GO) run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/obs
	$(GO) run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/spans -slack 4096 < /tmp/obs-guard.txt

# bench-obs runs the observability overhead benches (warm baseline vs
# metrics hub vs causal tracing) and records them in BENCH_obs.json under
# the same labeling scheme as the other bench-* targets, so the spans-off
# and spans-on kernel costs are tracked PR over PR.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents/(warm|obs|spans)' -benchmem -benchtime 5x . \
		| $(GO) run ./cmd/benchjson -label "$(BENCH_LABEL)" -out BENCH_obs.json

# sse-smoke streams /progress from a live -fast grid and asserts the SSE
# frames are well-formed (see scripts/sse_smoke.sh). Mirrors the CI
# obs-guard job's smoke step.
sse-smoke:
	./scripts/sse_smoke.sh

# resume-smoke exercises crash recovery across real processes: run the -fast
# grid, SIGINT it partway, rerun with -resume, and require that only the
# missing cells are recomputed and every CSV is byte-identical to an
# uninterrupted reference. Mirrors the CI resume-guard job.
resume-smoke:
	./scripts/resume_smoke.sh

# churnd-smoke exercises the serving layer across real processes: two
# tenants submit overlapping grids over HTTP (shared cells must dedup on
# the scheduler cache), the daemon is SIGKILLed mid-grid, and a restart on
# the same journal must recover the checkpointed cells, recompute only the
# missing ones, and serve a byte-identical CSV. Mirrors the CI churnd-smoke
# job.
churnd-smoke:
	./scripts/churnd_smoke.sh

# resume-guard enforces the checkpointing cost contract: appending a cell to
# the journal is a fixed per-cell budget (JSON encode + hash + one write,
# ~30 allocs — hence the raised slack), never a per-event cost. Anything
# that made journaling scale with the event count would blow past the slack
# by orders of magnitude.
resume-guard:
	$(GO) test -run '^$$' -bench 'BenchmarkRunCEvents/(warm|journal)' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/journal -slack 48
