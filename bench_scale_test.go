package bgpchurn

// Internet-scale benchmark: one warm-start churn cell per iteration on
// Baseline topologies at n ∈ {10k, 50k, 100k}, with the compact-RIB engine
// and streaming aggregation — the configuration that makes n=100k fit on a
// single machine. `make bench-scale` records ns/op plus peak RSS per size
// in BENCH_scale.json; the CI scale-smoke job holds the n=10k cell under an
// absolute peak-RSS budget via cmd/benchguard.
//
// The topologies form a growth chain (10k grown to 50k grown to 100k),
// exercising the incremental generator at scale, and are built lazily so a
// filtered run (scale-smoke selects only n=10000) never pays for the sizes
// it skips. The chain runs on the Fenwick-indexed generator (seconds per
// size — see BENCH_gen.json), so the warm cell, not setup, dominates
// wall-clock. Peak RSS is the process high-water mark (VmHWM); with sizes
// ascending each reading is dominated by the largest cell completed so far.
// Run this benchmark alone (as the Makefile target does) for clean numbers.

import (
	"fmt"
	"testing"
)

// scaleSeed fixes the Baseline instance the scale trajectory tracks.
// Baseline draws its tier-1 clique size from the seed alone, so parameter
// sets at different n remain growth-compatible.
const scaleSeed = 1

func scaleSizes() []int { return []int{10000, 50000, 100000} }

// scaleTopos caches the growth chain across sub-benchmarks of one process.
var scaleTopos = map[int]*Topology{}

// scaleTopology returns the Baseline topology at size n, generating the
// smallest size directly and growing through each intermediate size once.
func scaleTopology(b *testing.B, n int) *Topology {
	b.Helper()
	var prev *Topology
	for _, s := range scaleSizes() {
		if s > n {
			break
		}
		if scaleTopos[s] == nil {
			var (
				t   *Topology
				err error
			)
			if prev == nil {
				t, err = GenerateTopology(Baseline.Params(s, scaleSeed))
			} else {
				t, err = GrowTopology(prev, Baseline.Params(s, scaleSeed))
			}
			if err != nil {
				b.Fatal(err)
			}
			scaleTopos[s] = t
		}
		prev = scaleTopos[s]
	}
	if scaleTopos[n] == nil {
		b.Fatalf("size %d is not in the scale chain %v", n, scaleSizes())
	}
	return scaleTopos[n]
}

func BenchmarkScaleCell(b *testing.B) {
	for _, n := range scaleSizes() {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			topo := scaleTopology(b, n)
			cfg := DefaultExperiment(scaleSeed)
			cfg.Origins = 4
			cfg.WarmStart = true
			cfg.Parallelism = 1 // one origin worker: O(N) aggregation state
			cfg.BGP.CompactRIB = true
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunCEvents(topo, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total = res.TotalUpdates
			}
			b.StopTimer()
			b.ReportMetric(total, "total-updates")
			b.ReportMetric(float64(PeakRSSBytes())/(1<<20), "peakRSS-MB")
		})
	}
}
