package bgpchurn

// Determinism regression tier: the simulator's results must be a pure
// function of the seeds — independent of the origin-level worker count
// inside RunCEvents, of the grid scheduler's cell-level parallelism, and
// of whether a sweep ran sequentially or through the scheduler. The tests
// compare full rendered results byte for byte (update counts, the m/q/e
// factor decomposition, convergence times, spread summaries), for both the
// WRATE and NO-WRATE protocol variants.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"bgpchurn/internal/des"
)

// fingerprint renders a Result's complete numeric content; Result is a
// pure value type once dereferenced, so equal strings mean byte-identical
// results.
func fingerprint(r *Result) string { return fmt.Sprintf("%+v", *r) }

// fingerprintSweep renders every point of a sweep.
func fingerprintSweep(sw *SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", sw.Scenario)
	for _, p := range sw.Points {
		fmt.Fprintf(&b, "%d %s\n", p.N, fingerprint(p.R))
	}
	return b.String()
}

// protocolVariants returns the §4 NO-WRATE and §6 WRATE experiment
// configurations at reduced scale.
func protocolVariants(seed uint64, origins int) map[string]Experiment {
	noW := DefaultExperiment(seed)
	noW.Origins = origins
	w := noW
	w.BGP = WRATEProtocol(seed)
	return map[string]Experiment{"NO-WRATE": noW, "WRATE": w}
}

// shardedVariant returns cfg running on the windowed executor (a positive
// link delay is the conservative lookahead) split across the given number
// of node shards. All sharded-determinism comparisons hold the link delay
// fixed and vary only the shard count: the delay is part of the simulated
// model, the shard count is not.
func shardedVariant(cfg Experiment, shards int) Experiment {
	c := cfg
	c.BGP.LinkDelay = 10 * des.Millisecond
	c.BGP.Shards = shards
	return c
}

// shardCounts is the shard axis every sharded-determinism test sweeps.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedResultInvariantAcrossShardCounts demands that the windowed
// executor produce byte-identical results at every shard count, for both
// protocol variants and both RIB engines. Shards=1 is the reference: the
// same windowed schedule executed on a single shard.
func TestShardedResultInvariantAcrossShardCounts(t *testing.T) {
	topo, err := Baseline.Generate(400, 21)
	if err != nil {
		t.Fatal(err)
	}
	for variant, cfg := range protocolVariants(21, 6) {
		for _, engine := range []string{"classic", "compact"} {
			base := cfg
			if engine == "compact" {
				base = compactVariant(base)
			}
			var want string
			for _, shards := range shardCounts {
				res, err := RunCEvents(topo, shardedVariant(base, shards))
				if err != nil {
					t.Fatal(err)
				}
				got := fingerprint(res)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("%s/%s: Shards=%d changed the result:\nwant %s\ngot  %s",
						variant, engine, shards, want, got)
				}
			}
		}
	}
}

// TestRaceShardedCell runs one sharded grid cell with a metrics hub
// attached — exercising the barrier coordinator's ShardProbes and the
// concurrent intern table under instrumentation — and demands the result
// match an unsharded, uninstrumented run of the same windowed config. It
// is the -race tier's entry point for the sharded executor (the race
// target's -run pattern matches "Sharded").
func TestRaceShardedCell(t *testing.T) {
	topo, err := Baseline.Generate(1000, 43)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperiment(43)
	cfg.Origins = 4
	cfg = compactVariant(cfg)
	ref, err := RunCEvents(topo, shardedVariant(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardedVariant(cfg, 4)
	sharded.Obs = NewObsMetrics()
	got, err := RunCEvents(topo, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(ref) {
		t.Fatalf("sharded instrumented cell diverges from unsharded:\nshards=1 %s\nshards=4 %s",
			fingerprint(ref), fingerprint(got))
	}
	snap := sharded.Obs.Snapshot()
	if snap["bgpchurn_shard_barriers_total"] <= 0 {
		t.Fatal("sharded run executed no synchronization windows")
	}
	if snap["bgpchurn_shard_cross_updates_total"] <= 0 {
		t.Fatal("sharded run exchanged no cross-shard updates")
	}
}

func TestResultIdenticalAcrossParallelism(t *testing.T) {
	topo, err := Baseline.Generate(400, 21)
	if err != nil {
		t.Fatal(err)
	}
	parallelisms := []int{1, 4, runtime.NumCPU()}
	for variant, cfg := range protocolVariants(21, 6) {
		var want string
		for _, par := range parallelisms {
			c := cfg
			c.Parallelism = par
			res, err := RunCEvents(topo, c)
			if err != nil {
				t.Fatal(err)
			}
			got := fingerprint(res)
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("%s: Parallelism=%d changed the result:\nwant %s\ngot  %s", variant, par, want, got)
			}
		}
	}
}

func TestScheduledGridIdenticalToSequential(t *testing.T) {
	sizes := []int{200, 350}
	for variant, cfg := range protocolVariants(9, 5) {
		sweepCfg := SweepConfig{Sizes: sizes, TopologySeed: 9, Event: cfg}
		seq, err := Sweep(Baseline, sweepCfg)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprintSweep(seq)
		for _, par := range []int{1, 4, runtime.NumCPU()} {
			sched := NewScheduler(par)
			got, err := sched.RunSweep(context.Background(), Baseline, sweepCfg)
			if err != nil {
				t.Fatal(err)
			}
			if fp := fingerprintSweep(got); fp != want {
				t.Fatalf("%s: scheduled grid (parallelism %d) differs from sequential sweep:\nseq   %s\nsched %s",
					variant, par, want, fp)
			}
		}
		// And through a multi-request grid, where the scheduler interleaves
		// this sweep with another scenario's cells.
		out, err := RunGrid(context.Background(), []GridRequest{
			{Scenario: Baseline, Sizes: sizes, TopologySeed: 9, Event: cfg},
			{Scenario: Tree, Sizes: sizes, TopologySeed: 9, Event: cfg},
		})
		if err != nil {
			t.Fatal(err)
		}
		if fp := fingerprintSweep(out[0]); fp != want {
			t.Fatalf("%s: grid-assembled sweep differs from sequential:\nseq  %s\ngrid %s", variant, want, fp)
		}
	}
}

func TestResultIdenticalWithObs(t *testing.T) {
	// Instrumentation must be invisible to the simulation: probes never read
	// the virtual clock, consume RNG, or reorder events, so a run with a
	// metrics hub and update trace attached is byte-identical to a bare run.
	topo, err := Baseline.Generate(400, 37)
	if err != nil {
		t.Fatal(err)
	}
	for variant, cfg := range protocolVariants(37, 5) {
		bare, err := RunCEvents(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		instrumented := cfg
		instrumented.Obs = NewObsMetrics()
		instrumented.Trace = NewUpdateTrace(1024)
		got, err := RunCEvents(topo, instrumented)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != fingerprint(bare) {
			t.Fatalf("%s: attaching obs changed the result:\nbare %s\nobs  %s",
				variant, fingerprint(bare), fingerprint(got))
		}
		if instrumented.Obs.Snapshot()["bgpchurn_bgp_updates_processed_total"] <= 0 {
			t.Fatalf("%s: instrumented run recorded no processed updates", variant)
		}
	}
}

func TestRunSweepRepeatable(t *testing.T) {
	// Two independent schedulers over the same seeds must agree exactly —
	// the cache key covers every input that determines a cell's result.
	cfg := SweepConfig{Sizes: []int{200, 300}, TopologySeed: 31, Event: protocolVariants(31, 4)["WRATE"]}
	a, err := RunSweep(context.Background(), Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(context.Background(), Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintSweep(a) != fingerprintSweep(b) {
		t.Fatal("independent scheduled sweeps disagree on identical seeds")
	}
}
