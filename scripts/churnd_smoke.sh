#!/usr/bin/env bash
# churnd_smoke.sh — serving-layer smoke test (run by `make churnd-smoke` and
# the CI churnd-smoke job).
#
# Exercises churnd's robustness contract end to end, across real processes:
#
#   1. reference daemon: two clients submit overlapping grids over HTTP; the
#      shared cells must be served from the scheduler cache (one compute per
#      distinct cell), and SIGTERM must drain gracefully with exit 0,
#   2. crash daemon: the same grid is submitted to a fresh daemon, which is
#      SIGKILLed mid-grid — the journal must hold a strict subset of cells,
#   3. restarted daemon: on the same journal it must report the recovered
#      cells, recompute only the missing ones, and serve a result CSV that
#      is byte-identical to the reference, with the recovered/shed counters
#      visible on /metrics.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/churnd" ./cmd/churnd

# The test grid: one worker serializes the ascending sizes, so the SIGKILL
# poll below has a wide window between the early (fast) and late (slow)
# cells. Everything rides on seed 1, origins 3, so a cell is sub-second.
GRID='{"tenant":"alice","scenarios":["BASELINE"],"sizes":[100,200,400,800,1600,3200],"seed":1,"origins":3}'
SUBGRID='{"tenant":"bob","scenarios":["BASELINE"],"sizes":[400,800],"seed":1,"origins":3}'
TOTAL=6

# start_daemon <child|orphan> <logfile> <extra flags...>; sets $addr and
# appends the pid to $pids. "child" keeps the daemon a direct child (so
# `wait` can observe its exit code); "orphan" launches it via a subshell so
# a later SIGKILL does not trigger bash's job-termination notice.
start_daemon() {
    local mode=$1 log=$2
    shift 2
    if [ "$mode" = child ]; then
        "$work/churnd" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
        pids+=($!)
    else
        ("$work/churnd" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
            echo $! >"$work/last.pid")
        pids+=("$(cat "$work/last.pid")")
    fi
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*serving on http://||p' "$log")
        [ -n "$addr" ] && return 0
        sleep 0.1
    done
    echo "FAIL: daemon never reported its address" >&2
    cat "$log" >&2
    return 1
}

# submit <base> <json>; prints the job id.
submit() {
    curl -sf -X POST -d "$2" "http://$1/jobs" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -1
}

# wait_done <base> <id> <tries>
wait_done() {
    for _ in $(seq 1 "$3"); do
        state=$(curl -sf "http://$1/jobs/$2" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
        case "$state" in
        done) return 0 ;;
        failed | cancelled)
            echo "FAIL: job $2 ended $state" >&2
            curl -s "http://$1/jobs/$2" >&2
            return 1
            ;;
        esac
        sleep 0.2
    done
    echo "FAIL: job $2 never finished" >&2
    return 1
}

echo "== reference daemon: two tenants, overlapping grids, graceful drain"
start_daemon child "$work/ref.log" -journal "$work/ref.journal"
ref_addr=$addr
ja=$(submit "$ref_addr" "$GRID")
wait_done "$ref_addr" "$ja" 300
jb=$(submit "$ref_addr" "$SUBGRID")
wait_done "$ref_addr" "$jb" 300
curl -sf "http://$ref_addr/jobs/$ja/result.csv" >"$work/ref.csv"

# Dedup across clients: bob's two cells overlap alice's grid entirely, so
# the cache must have served them — misses stay at the distinct cell count.
hits=$(curl -sf "http://$ref_addr/stats" | sed -n 's/.*"Hits": \([0-9]*\).*/\1/p')
misses=$(curl -sf "http://$ref_addr/stats" | sed -n 's/.*"Misses": \([0-9]*\).*/\1/p')
if [ "$misses" -ne "$TOTAL" ] || [ "$hits" -lt 2 ]; then
    echo "FAIL: cache stats hits=$hits misses=$misses; want misses=$TOTAL (one compute per distinct cell) and hits>=2" >&2
    exit 1
fi
echo "   dedup ok: $misses computes, $hits cache hits"

kill -TERM "${pids[0]}"
if ! wait "${pids[0]}"; then
    echo "FAIL: SIGTERM drain exited non-zero" >&2
    cat "$work/ref.log" >&2
    exit 1
fi
grep -q 'churnd: drained in' "$work/ref.log" || {
    echo "FAIL: no drain log line" >&2
    cat "$work/ref.log" >&2
    exit 1
}

echo "== crash daemon: SIGKILL mid-grid"
start_daemon orphan "$work/crash.log" -journal "$work/cells.journal" -workers 1
crash_addr=$addr
crash_pid=${pids[1]}
submit "$crash_addr" "$GRID" >/dev/null
# Poll the journal (header + one line per checkpointed cell) and kill while
# a strict subset is on disk.
killed=0
for _ in $(seq 1 600); do
    lines=$(wc -l <"$work/cells.journal" 2>/dev/null || echo 0)
    if [ "$lines" -ge 3 ] && [ "$lines" -le "$TOTAL" ]; then
        kill -9 "$crash_pid"
        killed=1
        break
    fi
    sleep 0.05
done
# The daemon is an orphan (not our child), so poll until the kill lands.
for _ in $(seq 1 100); do
    kill -0 "$crash_pid" 2>/dev/null || break
    sleep 0.05
done
checkpointed=$(($(wc -l <"$work/cells.journal") - 1))
if [ "$killed" -ne 1 ] || [ "$checkpointed" -lt 1 ] || [ "$checkpointed" -ge "$TOTAL" ]; then
    echo "FAIL: journal holds $checkpointed cells after SIGKILL, want a strict subset of $TOTAL" >&2
    exit 1
fi
echo "   killed with $checkpointed/$TOTAL cells checkpointed"

echo "== restarted daemon: recovery and byte-identical results"
start_daemon orphan "$work/restart.log" -journal "$work/cells.journal" -workers 1
re_addr=$addr
recovered=$(sed -n 's/churnd: recovered \([0-9]*\) cells.*/\1/p' "$work/restart.log")
if [ "$recovered" -ne "$checkpointed" ]; then
    echo "FAIL: daemon recovered $recovered cells, journal held $checkpointed" >&2
    exit 1
fi
jr=$(submit "$re_addr" "$GRID")
wait_done "$re_addr" "$jr" 300
curl -sf "http://$re_addr/jobs/$jr/result.csv" >"$work/restart.csv"

if ! diff "$work/ref.csv" "$work/restart.csv"; then
    echo "FAIL: post-crash CSV differs from the reference" >&2
    exit 1
fi

metrics=$(curl -sf "http://$re_addr/metrics")
rec_metric=$(printf '%s\n' "$metrics" | sed -n 's/^bgpchurn_serve_cells_recovered_total \([0-9]*\)$/\1/p')
if [ -z "$rec_metric" ] || [ "$rec_metric" -lt 1 ]; then
    echo "FAIL: bgpchurn_serve_cells_recovered_total missing or zero on /metrics" >&2
    exit 1
fi
printf '%s\n' "$metrics" | grep -q '^bgpchurn_serve_jobs_shed_total ' || {
    echo "FAIL: bgpchurn_serve_jobs_shed_total missing from /metrics" >&2
    exit 1
}

echo "ok: recovered $recovered/$TOTAL cells, recomputed the rest, reference reproduced byte-for-byte"
