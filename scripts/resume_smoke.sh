#!/usr/bin/env bash
# resume_smoke.sh — crash-resume smoke test (run by `make resume-smoke` and
# the CI resume-guard job).
#
# Exercises the fault-tolerance contract end to end, across real processes:
#
#   1. run the full -fast figure grid uninterrupted (the reference),
#   2. run it again and SIGINT it partway through — the process must exit
#      130 and leave a valid journal holding a strict subset of the cells,
#   3. rerun with -resume — only the missing cells may be recomputed, and
#      every figure CSV must be byte-identical to the reference.
#
# Any drift in the byte-identical property, the journal format, or the
# interrupt exit path fails this script.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/experiments" ./cmd/experiments

# Seconds into the interrupted run at which SIGINT is delivered. The full
# -fast grid takes ~9s on a laptop-class core, so 3s lands mid-grid with
# wide margin on both sides; slower machines only widen it.
INT_AFTER=${INT_AFTER:-3}

echo "== reference run (uninterrupted)"
"$work/experiments" -fig all -fast -out "$work/ref" \
    -manifest "$work/ref-manifest.json" -journal "$work/ref.journal" >/dev/null

# Cell count = journal lines minus the header line.
total=$(($(wc -l <"$work/ref.journal") - 1))
if [ "$total" -lt 2 ]; then
    echo "FAIL: reference journal has $total cells; need >=2 to interrupt between" >&2
    exit 1
fi

echo "== interrupted run (SIGINT after ${INT_AFTER}s)"
set +e
timeout --preserve-status --signal=INT --kill-after=30 "$INT_AFTER" \
    "$work/experiments" -fig all -fast -out "$work/int" \
    -manifest "$work/int-manifest.json" -journal "$work/cells.journal" >"$work/int.log" 2>&1
code=$?
set -e
if [ "$code" -ne 130 ]; then
    echo "FAIL: interrupted run exited $code, want 130 (SIGINT)" >&2
    tail -5 "$work/int.log" >&2
    exit 1
fi
checkpointed=$(($(wc -l <"$work/cells.journal") - 1))
if [ "$checkpointed" -lt 1 ] || [ "$checkpointed" -ge "$total" ]; then
    echo "FAIL: journal holds $checkpointed cells after interrupt, want a strict subset of $total" >&2
    exit 1
fi
echo "   interrupted with $checkpointed/$total cells checkpointed"

echo "== resumed run"
"$work/experiments" -fig all -fast -resume -out "$work/res" \
    -manifest "$work/res-manifest.json" -journal "$work/cells.journal" >"$work/res.log" 2>&1

# Only the cells missing from the journal may have been recomputed.
computed=$(grep -o 'grid cells computed: [0-9]*' "$work/res.log" | grep -o '[0-9]*$')
want=$((total - checkpointed))
if [ "$computed" -ne "$want" ]; then
    echo "FAIL: resumed run computed $computed cells, want only the $want missing ones" >&2
    tail -5 "$work/res.log" >&2
    exit 1
fi

# The recovery guarantee: resumed output is byte-identical to a run that
# was never interrupted.
if ! diff -r "$work/ref" "$work/res"; then
    echo "FAIL: resumed CSVs differ from the uninterrupted reference" >&2
    exit 1
fi

echo "ok: resumed run recomputed $computed/$total cells and reproduced the reference byte-for-byte"
