#!/usr/bin/env bash
# sse_smoke.sh — /progress streaming smoke test (run by `make sse-smoke` and
# the CI obs-guard job).
#
# Starts a -fast grid with the obs server on a free port, streams /progress
# with curl while the grid runs, and asserts the Server-Sent-Events framing:
#
#   1. the stream opens with the comment banner line,
#   2. cell and attribution events both arrive,
#   3. every data: line is valid JSON and directly follows event:/id: lines.
#
# Any drift in the SSE framing, the broker wiring, or the event payloads
# fails this script.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'kill "$exp_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/experiments" ./cmd/experiments

echo "== starting -fast grid with obs server"
"$work/experiments" -fig all -fast -obs 127.0.0.1:0 -out "$work/out" \
    -manifest '' -journal '' >"$work/exp.log" 2>&1 &
exp_pid=$!

# The serving line prints the bound address before the grid starts.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^obs: serving .* on http://##p' "$work/exp.log" | head -1)
    [ -n "$addr" ] && break
    if ! kill -0 "$exp_pid" 2>/dev/null; then
        echo "FAIL: experiments exited before serving obs" >&2
        cat "$work/exp.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: obs serving line never appeared" >&2
    cat "$work/exp.log" >&2
    exit 1
fi
echo "   obs server on $addr"

echo "== streaming /progress mid-grid"
# Stream for a few seconds while cells complete; curl exits 28 on --max-time,
# which is the expected way to stop reading an endless stream.
set +e
curl -sN --max-time 5 "http://$addr/progress" >"$work/stream.txt"
curl_code=$?
set -e
if [ "$curl_code" -ne 0 ] && [ "$curl_code" -ne 28 ] && [ "$curl_code" -ne 18 ]; then
    echo "FAIL: curl exited $curl_code" >&2
    exit 1
fi

head -c 0 "$work/stream.txt" # ensure readable
if ! head -1 "$work/stream.txt" | grep -q '^:'; then
    echo "FAIL: stream does not open with the SSE comment banner" >&2
    head -5 "$work/stream.txt" >&2
    exit 1
fi
if ! grep -q '^event: cell$' "$work/stream.txt"; then
    echo "FAIL: no cell event in stream" >&2
    head -20 "$work/stream.txt" >&2
    exit 1
fi
if ! grep -q '^event: attribution$' "$work/stream.txt"; then
    echo "FAIL: no attribution event in stream" >&2
    head -20 "$work/stream.txt" >&2
    exit 1
fi
# Framing: every data: line is preceded by event: then id:, and its payload
# is one JSON object.
awk '
    /^event: /{ prev2 = prev1; prev1 = "event"; next }
    /^id: [0-9]+$/{ prev2 = prev1; prev1 = "id"; next }
    /^data: /{
        if (prev1 != "id" || prev2 != "event") { print "bad framing before: " $0; exit 1 }
        payload = substr($0, 7)
        if (payload !~ /^\{.*\}$/) { print "non-object payload: " $0; exit 1 }
        prev2 = prev1; prev1 = "data"; next
    }
    { prev2 = prev1; prev1 = "other" }
' "$work/stream.txt"

events=$(grep -c '^event: ' "$work/stream.txt")
echo "== waiting for grid to finish"
wait "$exp_pid"

echo "ok: streamed $events well-formed SSE events from a live grid"
