package bgpchurn_test

import (
	"fmt"

	"bgpchurn"
)

// Example reproduces the README quick start: one Baseline topology, one
// C-event experiment, deterministic output for a fixed seed.
func Example() {
	topo, err := bgpchurn.Baseline.Generate(400, 42)
	if err != nil {
		panic(err)
	}
	cfg := bgpchurn.DefaultExperiment(42)
	cfg.Origins = 5
	cfg.Parallelism = 1
	res, err := bgpchurn.RunCEvents(topo, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("churn ordering holds: %v\n",
		res.U(bgpchurn.T) > res.U(bgpchurn.C) && res.U(bgpchurn.M) > res.U(bgpchurn.C))
	// Output:
	// churn ordering holds: true
}

// ExampleScenario_Generate shows how growth scenarios parameterize the
// generator.
func ExampleScenario_Generate() {
	topo, err := bgpchurn.Tree.Generate(300, 7)
	if err != nil {
		panic(err)
	}
	single := true
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Type != bgpchurn.T && len(n.Providers) != 1 {
			single = false
		}
	}
	fmt.Println("every non-tier-1 node single-homed:", single)
	// Output:
	// every non-tier-1 node single-homed: true
}

// ExampleNetwork demonstrates driving the protocol engine directly.
func ExampleNetwork() {
	topo, err := bgpchurn.Baseline.Generate(300, 3)
	if err != nil {
		panic(err)
	}
	net, err := bgpchurn.NewNetwork(topo, bgpchurn.DefaultProtocol(3))
	if err != nil {
		panic(err)
	}
	origin := topo.NodesOfType(bgpchurn.C)[0]
	net.Originate(origin, 1)
	net.Run()
	p := net.BestPath(0, 1)
	fmt.Println("tier-1 has a route:", net.HasRoute(0, 1))
	fmt.Println("path ends at the origin:", p[len(p)-1] == origin)
	// Output:
	// tier-1 has a route: true
	// path ends at the origin: true
}

// ExampleMannKendall runs the Fig. 1 trend estimator on a synthetic
// monitor feed.
func ExampleMannKendall() {
	series, err := bgpchurn.GenerateMonitorTrace(bgpchurn.DefaultMonitorTrace(1))
	if err != nil {
		panic(err)
	}
	trend, err := bgpchurn.MannKendall(series)
	if err != nil {
		panic(err)
	}
	fmt.Println("increasing churn detected:", trend.Increasing)
	// Output:
	// increasing churn detected: true
}
